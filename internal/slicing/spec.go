package slicing

import (
	"repro/internal/geom"
	"repro/internal/shape"
)

// Speculative scoring: SpecScore prices a candidate move against the frozen
// evaluator state without committing anything, so a batched annealer can
// score several candidates per step — cheaply, and concurrently when each
// candidate brings its own scratch and arena region — and only replay the
// one the Metropolis chain accepts through ApplyMove.
//
// The score is bit-identical to what Perturb + Eval would produce for the
// same move: the spec sweep recomputes the dirty path with the same
// composition kernels (into the candidate's private arena region), and the
// spec assign pass mirrors the incremental assign — including its cache-hit
// pattern on clean subtrees and the hierarchical own+left+right violation
// association — while writing nothing: no journals, no slot flips, no Rects.
// Rejecting a speculatively scored candidate therefore costs zero restores.
//
// All three move kinds are scorable. Operand–operator swaps relink the
// tree, so their overrides extend to the child links (the spec mirror of
// resyncSwap's three-node relink); the rare swaps the incremental resync
// would answer with a full reparse report ok=false and fall back to the
// full Perturb path.

// SpecScratch holds the per-candidate state of one speculative score: the
// epoch-stamped node overrides of the candidate tree and the rectangle diff
// its layout would cause. Each concurrently scored candidate needs its own
// scratch (and its own arena region index); a scratch may be reused across
// candidates and evaluators without clearing.
type SpecScratch struct {
	epoch uint32
	ep    []uint32 // node position is overridden when ep[i] == epoch
	val   []int32
	left  []int32
	right []int32
	at    []int64
	am    []int64
	frac  []float64
	span  []shape.Span

	// ChangedB/ChangedR list the blocks whose rectangle the candidate layout
	// would rewrite to a different value, and those rectangles — exactly the
	// Changed diff a committed Perturb+Eval would report, in the same order.
	// Valid until the next SpecScore with this scratch.
	ChangedB []int32
	ChangedR []geom.Rect

	// The assign records: every internal node the speculative descent
	// computed (did not slot-hit), with its budget rectangle and subtree
	// violation sums — exactly the slots the committed Eval's assign would
	// write. CommitSpec replays them instead of descending again.
	visN                []int32
	visR                []geom.Rect
	visAt, visAm, visMc []float64

	// The candidate's root violation sums, for CommitSpec's Eval record.
	vAt, vAm, vMacro float64
}

// prepare sizes the scratch for n node positions. Growth allocates; the
// steady state (same evaluator shape) does not.
func (s *SpecScratch) prepare(n int) {
	s.ep = resizeSlice(s.ep, n)
	s.val = resizeSlice(s.val, n)
	s.left = resizeSlice(s.left, n)
	s.right = resizeSlice(s.right, n)
	s.at = resizeSlice(s.at, n)
	s.am = resizeSlice(s.am, n)
	s.frac = resizeSlice(s.frac, n)
	s.span = resizeSlice(s.span, n)
	s.visN = resizeSlice(s.visN, n)[:0]
	s.visR = resizeSlice(s.visR, n)[:0]
	s.visAt = resizeSlice(s.visAt, n)[:0]
	s.visAm = resizeSlice(s.visAm, n)[:0]
	s.visMc = resizeSlice(s.visMc, n)[:0]
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: stale stamps could alias the new epoch
		for i := range s.ep {
			s.ep[i] = 0
		}
		s.epoch = 1
	}
}

// EnsureSpecRegions reserves k disjoint speculative slot regions in the
// arena — one per concurrently in-flight candidate, each with one slot per
// node — and must be called after Reset and before SpecScore (a Reset
// re-lays the slabs and drops the regions). It must not run concurrently
// with SpecScore calls: growing the arena reallocates the slabs.
func (ev *Evaluator) EnsureSpecRegions(k int) {
	if k <= ev.specRegions {
		return
	}
	ev.specRegions = k
	ev.arena.Resize(int(ev.specBase) + k*len(ev.nodes)*int(ev.slotCap))
}

// SpecScore prices move mv — drawn by Expr.PerturbMove and already rolled
// back, so the expression and evaluator are in the frozen base state —
// against budget, using scratch s and the given spec region (0 ≤ region <
// EnsureSpecRegions' k; concurrent scores need distinct scratches and
// regions). It returns the Penalty the committed move's Eval would report
// and records the rectangle diff in s; ok is false for the rare
// operand–operator swaps whose incremental resync would fall back to a
// full reparse (SpecFeasible screens for them cheaply).
//
//hidapvet:hotpath
func (ev *Evaluator) SpecScore(mv *Move, budget geom.Rect, s *SpecScratch, region int) (penalty float64, ok bool) {
	n := len(ev.nodes)
	s.prepare(n) //hidapvet:allow allocfree scratch growth is a one-time warm-up per evaluator shape; the steady state resizes within capacity
	s.ChangedB, s.ChangedR = s.ChangedB[:0], s.ChangedR[:0]
	if n == 0 || budget.Empty() {
		// Mirrors Eval's empty path: no violations, every rect zeroed.
		for i := range ev.ev.Rects {
			if ev.ev.Rects[i] != (geom.Rect{}) {
				s.ChangedB = append(s.ChangedB, int32(i))
				s.ChangedR = append(s.ChangedR, geom.Rect{})
			}
		}
		return 1, true
	}
	if mv.I != mv.J {
		switch mv.Kind {
		case MoveOperandSwap:
			// The expression is at base, so the candidate's swapped values
			// are the base values crossed over.
			s.markSpec(ev, mv.I)
			s.markSpec(ev, mv.J)
			s.val[mv.I], s.val[mv.J] = ev.expr.elems[mv.J], ev.expr.elems[mv.I]
		case MoveChainInvert:
			for k := mv.I; k < mv.J; k++ {
				s.markSpec(ev, k)
				s.val[k] = -3 - ev.expr.elems[k] // OpV ↔ OpH
			}
		case MoveOperandOperatorSwap:
			if !ev.specSwap(mv, s) {
				return 0, false
			}
		}
		// Recompute the overridden positions ascending — children before
		// parents, exactly the base sweep's order — into the candidate's
		// private arena region.
		slot := ev.specBase + int32(region)*int32(n)*ev.slotCap
		for i := int32(mv.I); i <= ev.root; i++ {
			if s.ep[i] == s.epoch {
				ev.specRecompute(i, slot+i*ev.slotCap, s)
			}
		}
	}
	s.vAt, s.vAm, s.vMacro = ev.specAssign(ev.root, budget, s)
	return 1 + ev.p.PenaltyAt*s.vAt + ev.p.PenaltyAm*s.vAm + ev.p.PenaltyMacro*s.vMacro, true
}

// SpecFeasible reports whether SpecScore covers mv against the current
// base state. Only the rare operand–operator swaps whose incremental
// resync would reparse the whole expression are out: staging them would
// waste the draw, so the batching engine screens with this before
// committing to a speculative slot.
//
//hidapvet:hotpath
func (ev *Evaluator) SpecFeasible(mv *Move) bool {
	if mv.Kind != MoveOperandOperatorSwap || mv.I == mv.J || len(ev.nodes) == 0 {
		return true
	}
	ii, jj := int32(mv.I), int32(mv.J)
	if ev.expr.elems[jj] < 0 {
		p := jj
		for ev.parent[p] >= 0 && ev.nodes[ev.parent[p]].right != p {
			p = ev.parent[p]
		}
		return ev.parent[p] >= 0
	}
	q := ev.parent[ii]
	return q >= 0 && ev.nodes[q].left == ii
}

// CommitSpec commits a move that SpecScore already priced with scratch s,
// reusing both halves of the speculative work instead of recomputing them.
// The recompute sweep becomes a write-back — node sums and fracs copy out
// of the override arrays, composed curves copy from the candidate's arena
// region into the node's spare buffer, a memmove where the full path would
// re-run the Stockmeyer merge — and the assignment descent becomes a replay
// of the recorded spec descent: every internal node the spec assign
// computed gets the slot the committed Eval's assign would have written
// (same rectangle, same sums, post-write-back structure version, flipped
// side), rectangles apply from the recorded diff, and the Eval record takes
// the recorded violation sums. The resulting state — tree, rectangles,
// changed list, and the assignment-slot cache the next move will consult —
// is bit-identical to ApplyMove + Eval, field for field, with no descent.
//
// The move journals stay empty: the annealing engine commits only accepted
// moves and never undoes an acceptance, so there is no pre-move state to
// keep. The returned Eval record is evaluator-owned, like Eval's.
//
//hidapvet:hotpath
func (ev *Evaluator) CommitSpec(mv *Move, budget geom.Rect, s *SpecScratch) *Eval {
	ev.movePrologue()
	ev.move = *mv
	ev.expr.ApplyMove(mv)
	if len(ev.nodes) == 0 || budget.Empty() || mv.TopologyChanged() {
		// SpecScore's empty path stages no overrides to copy from, and a
		// relinking move needs the journal-disciplined resync; both resync
		// and evaluate in full. Acceptances are concentrated in the warm
		// phase, where the engine speculates little, so the fallback stays
		// off the converged hot path.
		ev.resyncMove()
		return ev.Eval(budget)
	}
	ev.journal = ev.journal[:0]
	if mv.I != mv.J {
		for i := int32(mv.I); i <= ev.root; i++ {
			if s.ep[i] != s.epoch {
				continue
			}
			nd := &ev.nodes[i]
			nd.sver++
			nd.val = s.val[i]
			if nd.val >= 0 {
				b := &ev.blocks[nd.val]
				nd.at, nd.am = b.TargetArea, b.MinArea
				ev.spans[i] = ev.leafSpan[nd.val]
				continue
			}
			nd.at, nd.am, nd.frac = s.at[i], s.am[i], s.frac[i]
			// The span aliasing below mirrors recompute: children committed
			// first (ascending order), so their spans are already final.
			ls, rs := ev.spans[nd.left], ev.spans[nd.right]
			if ls.N == 0 {
				ev.spans[i] = rs
				continue
			}
			if rs.N == 0 {
				ev.spans[i] = ls
				continue
			}
			side := 1 - nd.side
			ev.spans[i] = ev.arena.CopyAt(nd.buf[side], s.span[i])
			nd.side = side
		}
	}
	// Replay the recorded assign descent. Slot writes read each node's
	// structure version after the write-back above bumped it, exactly as
	// the committed assign would; unrecorded nodes slot-hit in the spec
	// descent under the same conditions the committed descent would have,
	// so leaving their slots untouched matches it too.
	for k, ni := range s.visN {
		nd := &ev.nodes[ni]
		nd.aside ^= 1
		ev.aslots[2*ni+int32(nd.aside)] = assignSlot{
			arect: s.visR[k],
			vAt:   s.visAt[k], vAm: s.visAm[k], vMacro: s.visMc[k],
			aGen: ev.aCur, sver: nd.sver,
		}
	}
	out := &ev.ev
	ev.changed = append(ev.changed[:0], s.ChangedB...)
	for k, b := range s.ChangedB {
		out.Rects[b] = s.ChangedR[k]
	}
	out.ViolationAt, out.ViolationAm, out.ViolationMacro = s.vAt, s.vAm, s.vMacro
	out.Penalty = 1 + ev.p.PenaltyAt*s.vAt + ev.p.PenaltyAm*s.vAm + ev.p.PenaltyMacro*s.vMacro
	if budget != ev.moveBudget {
		ev.budgetMoved = true
	}
	ev.lastBudget = budget
	return out
}

// markSpec stamps a position and its ancestors into the candidate's dirty
// set, seeding each override with the node's base value and links (the
// touched positions overwrite theirs afterwards). Stops at the first
// stamped node, whose ancestors are stamped by induction.
func (s *SpecScratch) markSpec(ev *Evaluator, i int) {
	for p := int32(i); p >= 0 && s.stampOne(ev, p); p = ev.parent[p] {
	}
}

// stampOne stamps one node, seeding its overrides from the base tree, and
// reports whether the node was newly stamped.
func (s *SpecScratch) stampOne(ev *Evaluator, p int32) bool {
	if s.ep[p] == s.epoch {
		return false
	}
	nd := &ev.nodes[p]
	s.ep[p] = s.epoch
	s.val[p] = nd.val
	s.left[p], s.right[p] = nd.left, nd.right
	return true
}

// specSwap stages the overrides of an operand–operator swap: the spec
// mirror of resyncSwap. The candidate tree differs from the base by a
// three-node relink (the swapped pair and the operator q that loses or
// gains a child) plus a value re-sweep of both touched positions'
// root paths — which, for an adjacent pair, collapse to the one chain
// above position J. The rare configurations resyncSwap answers with a
// full reparse report false; the engine falls back to the serial path.
//
//hidapvet:hotpath
func (ev *Evaluator) specSwap(mv *Move, s *SpecScratch) bool {
	ii, jj := int32(mv.I), int32(mv.J)
	// The expression is at base, so the swapped pair's candidate values are
	// the base values crossed over.
	ei, ej := ev.expr.elems[jj], ev.expr.elems[ii]
	if ei < 0 {
		// Case A: the operator moves left. Find q by climbing the left
		// spine above the old operator node, as resyncSwap does.
		p := jj
		for ev.parent[p] >= 0 && ev.nodes[ev.parent[p]].right != p {
			p = ev.parent[p]
		}
		q := ev.parent[p]
		if q < 0 {
			return false // the full path would reparse
		}
		x, y := ev.nodes[q].left, ev.nodes[jj].left
		s.stampOne(ev, ii)
		s.stampOne(ev, jj)
		s.markSpec(ev, int(ev.parent[jj]))
		s.val[ii], s.val[jj] = ei, ej
		s.left[ii], s.right[ii] = x, y
		s.left[jj], s.right[jj] = -1, -1
		s.left[q] = ii
		return true
	}
	// Case B: the operator moves right; q popped the old operator node as
	// its left child.
	q := ev.parent[ii]
	if q < 0 || ev.nodes[q].left != ii {
		return false // the full path would reparse
	}
	x, y := ev.nodes[ii].left, ev.nodes[ii].right
	s.stampOne(ev, ii)
	s.stampOne(ev, jj)
	s.markSpec(ev, int(ev.parent[jj]))
	s.val[ii], s.val[jj] = ei, ej
	s.left[ii], s.right[ii] = -1, -1
	s.left[jj], s.right[jj] = y, ii
	s.left[q] = x
	return true
}

// specRecompute is recompute over the override arrays: the candidate value
// of a dirty node composed from override-aware children, written to the
// scratch instead of the tree. dst is the node's slot in the candidate's
// arena region; concurrent candidates write disjoint regions, which the
// arena permits.
//
//hidapvet:hotpath
func (ev *Evaluator) specRecompute(i, dst int32, s *SpecScratch) {
	v := s.val[i]
	if v >= 0 {
		b := &ev.blocks[v]
		s.at[i], s.am[i] = b.TargetArea, b.MinArea
		s.span[i] = ev.leafSpan[v]
		return
	}
	l, r := s.left[i], s.right[i] // the candidate's links: i is stamped
	lat, lam, ls := ev.specNode(l, s)
	rat, ram, rs := ev.specNode(r, s)
	s.at[i] = lat + rat
	s.am[i] = lam + ram
	s.frac[i] = atFrac(lat, rat)
	// Empty operands alias exactly as recompute does; all reads here, so
	// lifetime is trivially safe.
	if ls.N == 0 {
		s.span[i] = rs
		return
	}
	if rs.N == 0 {
		s.span[i] = ls
		return
	}
	if v == OpV {
		s.span[i] = ev.arena.CombineH(dst, ls, rs, ev.p.CompactPoints)
	} else {
		s.span[i] = ev.arena.CombineV(dst, ls, rs, ev.p.CompactPoints)
	}
}

// specNode reads one node's ⟨at, am, span⟩ through the override layer.
//
//hidapvet:hotpath
func (ev *Evaluator) specNode(i int32, s *SpecScratch) (at, am int64, sp shape.Span) {
	if s.ep[i] == s.epoch {
		return s.at[i], s.am[i], s.span[i]
	}
	nd := &ev.nodes[i]
	return nd.at, nd.am, ev.spans[i]
}

// specAssign mirrors assign over the candidate tree, reading base state
// through the override layer and writing nothing. Clean subtrees hit the
// base assign cache under exactly the conditions the committed Eval would
// (an override stamp plays the role of the recompute's sver bump), so the
// descent — and with it the changed-rect diff and the floating-point
// summation tree — matches the committed pass node for node.
//
//hidapvet:hotpath
func (ev *Evaluator) specAssign(ni int32, r geom.Rect, s *SpecScratch) (vAt, vAm, vMacro float64) {
	nd := &ev.nodes[ni]
	sp := s.ep[ni] == s.epoch
	cl, cr := nd.left, nd.right
	v, frac := nd.val, nd.frac
	if sp {
		cl, cr = s.left[ni], s.right[ni]
		v, frac = s.val[ni], s.frac[ni]
	}
	if cl < 0 {
		if ev.ev.Rects[v] != r {
			s.ChangedB = append(s.ChangedB, v)
			s.ChangedR = append(s.ChangedR, r)
		}
		return leafViolations(&ev.blocks[v], r)
	}
	if !sp {
		cur := &ev.aslots[2*ni+int32(nd.aside)]
		if cur.aGen == ev.aCur && cur.sver == nd.sver && cur.arect == r {
			return cur.vAt, cur.vAm, cur.vMacro
		}
	}
	_, _, ls := ev.specNode(cl, s)
	_, _, rs := ev.specNode(cr, s)
	var own float64
	var lAt, lAm, lMac, rAt, rAm, rMac float64
	if v == OpV {
		wl := splitShareFrac(r.W, frac)
		wl, own = repairSplitSpan(&ev.arena, wl, r.W, r.H, ls, rs, true)
		lAt, lAm, lMac = ev.specAssign(cl, geom.RectXYWH(r.X, r.Y, wl, r.H), s)
		rAt, rAm, rMac = ev.specAssign(cr, geom.RectXYWH(r.X+wl, r.Y, r.W-wl, r.H), s)
	} else {
		hb := splitShareFrac(r.H, frac)
		hb, own = repairSplitSpan(&ev.arena, hb, r.H, r.W, ls, rs, false)
		lAt, lAm, lMac = ev.specAssign(cl, geom.RectXYWH(r.X, r.Y, r.W, hb), s)
		rAt, rAm, rMac = ev.specAssign(cr, geom.RectXYWH(r.X, r.Y+hb, r.W, r.H-hb), s)
	}
	vAt, vAm, vMacro = lAt+rAt, lAm+rAm, own+lMac+rMac
	// Record the node: the committed assign would write exactly this slot.
	s.visN = append(s.visN, ni)
	s.visR = append(s.visR, r)
	s.visAt = append(s.visAt, vAt)
	s.visAm = append(s.visAm, vAm)
	s.visMc = append(s.visMc, vMacro)
	return vAt, vAm, vMacro
}
