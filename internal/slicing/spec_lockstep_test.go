package slicing

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestCommitSpecLockstep drives two evaluators through the same 4k-move
// accept/reject walk: A commits every accepted move through the full
// ApplyMove+Eval path, B through SpecScore+CommitSpec (and touches nothing
// on rejections, as the batched annealer does). After every acceptance the
// two must agree bit for bit — penalty, changed list, every rectangle, and
// the entire cached tree including composed curve corners. This pins the
// subtle half of the commit-from-spec contract: the assignment-slot cache
// left behind by a speculative commit may be staler than the full path's,
// but must never vouch for rectangles the commit rewrote (the retired-slot
// discipline in CommitSpec).
func TestCommitSpecLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 10
	blocks := randomBlocks(rng, n)
	exprA := NewBalanced(n)
	exprB := NewBalanced(n)
	p := DefaultEvalParams()
	A := NewEvaluator(&exprA, blocks, p)
	B := NewEvaluator(&exprB, blocks, p)
	B.EnsureSpecRegions(1)
	budget := geom.RectXYWH(0, 0, 1500, 1200)
	A.Eval(budget)
	B.Eval(budget)

	var ss SpecScratch
	var mvA, mvB Move
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	coin := rand.New(rand.NewSource(6))
	for step := 0; step < 4000; step++ {
		exprA.PerturbMove(rngA, &mvA)
		exprA.UndoMove(&mvA)
		exprB.PerturbMove(rngB, &mvB)
		exprB.UndoMove(&mvB)
		if mvA != mvB {
			t.Fatalf("step %d: move divergence %+v vs %+v", step, mvA, mvB)
		}
		accept := coin.Intn(2) == 0
		if !B.SpecFeasible(&mvB) {
			// The rare reparse-fallback swaps: serial path on both sides.
			uA := A.ApplyMove(&mvA)
			uB := B.ApplyMove(&mvB)
			evA := A.Eval(budget)
			evB := B.Eval(budget)
			if evA.Penalty != evB.Penalty {
				t.Fatalf("step %d (M3): penalty %v vs %v", step, evA.Penalty, evB.Penalty)
			}
			if !accept {
				uA()
				uB()
			}
			continue
		}
		pen, ok := B.SpecScore(&mvB, budget, &ss, 0)
		if !ok {
			t.Fatalf("step %d: unexpectedly unscorable kind %v", step, mvB.Kind)
		}
		uA := A.ApplyMove(&mvA)
		evA := A.Eval(budget)
		if pen != evA.Penalty {
			t.Fatalf("step %d kind %v: spec penalty %v != full %v", step, mvA.Kind, pen, evA.Penalty)
		}
		if !accept {
			uA()
			continue
		}
		evB := B.CommitSpec(&mvB, budget, &ss)
		if evB.Penalty != evA.Penalty {
			t.Fatalf("step %d: commit penalty %v != full %v", step, evB.Penalty, evA.Penalty)
		}
		chA, chB := A.Changed(), B.Changed()
		if len(chA) != len(chB) {
			t.Fatalf("step %d: changed %v vs %v", step, chB, chA)
		}
		for k := range chA {
			if chA[k] != chB[k] {
				t.Fatalf("step %d: changed[%d] %d vs %d", step, k, chB[k], chA[k])
			}
		}
		for i := range evA.Rects {
			if evA.Rects[i] != evB.Rects[i] {
				t.Fatalf("step %d: rect %d %v vs %v", step, i, evB.Rects[i], evA.Rects[i])
			}
		}
		if exprA.String() != exprB.String() {
			t.Fatalf("step %d: expr %s vs %s", step, exprB.String(), exprA.String())
		}
		for i := range A.nodes {
			na, nb := &A.nodes[i], &B.nodes[i]
			if na.val != nb.val || na.at != nb.at || na.am != nb.am || na.frac != nb.frac ||
				na.left != nb.left || na.right != nb.right {
				t.Fatalf("step %d node %d: A{v%d at%d am%d f%v l%d r%d} B{v%d at%d am%d f%v l%d r%d}",
					step, i, na.val, na.at, na.am, na.frac, na.left, na.right,
					nb.val, nb.at, nb.am, nb.frac, nb.left, nb.right)
			}
			sa, sb := A.spans[i], B.spans[i]
			if sa.N != sb.N {
				t.Fatalf("step %d node %d: span N %d vs %d", step, i, sa.N, sb.N)
			}
			pa := A.arena.AppendCurve(nil, sa)
			pb := B.arena.AppendCurve(nil, sb)
			for k := range pa {
				if pa[k] != pb[k] {
					t.Fatalf("step %d node %d corner %d: %v vs %v", step, i, k, pa[k], pb[k])
				}
			}
		}
	}
}
