package slicing

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestSpecScoreMatchesApply is the differential contract of speculative
// scoring: across 10k random moves — drawn exactly as the annealer draws
// them, against an evaluator state that advances through accepted moves and
// undone rejections — SpecScore must return bit for bit the Penalty that
// committing the same move through ApplyMove + Eval reports, and its
// ChangedB/ChangedR diff must equal the committed Changed() list in content
// and order. Budgets cycle (including the empty budget) and candidates
// alternate between two spec regions to exercise the region offset math.
func TestSpecScoreMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for _, n := range []int{1, 2, 3, 5, 9, 24} {
		blocks := randomBlocks(rng, n)
		expr := NewBalanced(n)
		p := DefaultEvalParams()
		inc := NewEvaluator(&expr, blocks, p)
		inc.EnsureSpecRegions(2)

		budgets := []geom.Rect{
			geom.RectXYWH(0, 0, 1500, 1200),
			geom.RectXYWH(10, 20, 700, 900),
			geom.RectXYWH(0, 0, 350, 300), // tight: violations accrue
			{},                            // empty: zero-rect diff path
		}
		var preRects []geom.Rect
		var ss SpecScratch
		var mv Move
		steps := 10_000 / len(budgets)
		if n == 1 {
			steps = 20
		}
		specScored := 0
		for step := 0; step < steps; step++ {
			budget := budgets[step%len(budgets)]
			// Re-evaluate the base at this budget, as the annealer's frozen
			// state always is at scoring time.
			preRects = append(preRects[:0], inc.Eval(budget).Rects...)
			// Draw the candidate exactly as a batching annealer does: perturb
			// the expression, record the move, roll the expression back.
			expr.PerturbMove(rng, &mv)
			expr.UndoMove(&mv)

			pen, ok := inc.SpecScore(&mv, budget, &ss, step%2)
			if ok != inc.SpecFeasible(&mv) {
				t.Fatalf("n=%d step %d: ok=%v but SpecFeasible=%v for kind %v",
					n, step, ok, !ok, mv.Kind)
			}

			undo := inc.ApplyMove(&mv)
			ev := inc.Eval(budget)
			if ok {
				specScored++
				if pen != ev.Penalty {
					t.Fatalf("n=%d step %d (kind %v, %d/%d): spec penalty %v != committed %v",
						n, step, mv.Kind, mv.I, mv.J, pen, ev.Penalty)
				}
				ch := inc.Changed()
				if len(ss.ChangedB) != len(ch) {
					t.Fatalf("n=%d step %d: spec changed %v != committed %v", n, step, ss.ChangedB, ch)
				}
				for k := range ch {
					if ss.ChangedB[k] != ch[k] {
						t.Fatalf("n=%d step %d: spec changed[%d]=%d, committed %d",
							n, step, k, ss.ChangedB[k], ch[k])
					}
					if ss.ChangedR[k] != ev.Rects[ch[k]] {
						t.Fatalf("n=%d step %d: spec rect for block %d = %v, committed %v",
							n, step, ch[k], ss.ChangedR[k], ev.Rects[ch[k]])
					}
				}
			}

			if rng.Intn(2) == 0 {
				undo()
				// A rejected move must leave the frozen state untouched.
				ev2 := inc.Eval(budget)
				for i := range preRects {
					if ev2.Rects[i] != preRects[i] {
						t.Fatalf("n=%d step %d: undo left rect %d = %v, want %v",
							n, step, i, ev2.Rects[i], preRects[i])
					}
				}
			}
		}
		if n > 1 && specScored == 0 {
			t.Fatalf("n=%d: no speculative scores exercised", n)
		}
	}
}

// TestSpecScoreAfterEmptyBudget pins the empty-budget diff: spec scoring
// against a base whose rects were zeroed by an empty Eval must report the
// same re-inflation diff a committed move would.
func TestSpecScoreAfterEmptyBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 8
	blocks := randomBlocks(rng, n)
	expr := NewBalanced(n)
	inc := NewEvaluator(&expr, blocks, DefaultEvalParams())
	inc.EnsureSpecRegions(1)
	inc.Eval(geom.Rect{}) // zero every rect

	var ss SpecScratch
	var mv Move
	budget := geom.RectXYWH(0, 0, 900, 700)
	for {
		expr.PerturbMove(rng, &mv)
		expr.UndoMove(&mv)
		if inc.SpecFeasible(&mv) {
			break
		}
	}
	pen, ok := inc.SpecScore(&mv, budget, &ss, 0)
	if !ok {
		t.Fatal("scorable move reported unscorable")
	}
	inc.ApplyMove(&mv)
	ev := inc.Eval(budget)
	if pen != ev.Penalty || len(ss.ChangedB) != len(inc.Changed()) {
		t.Fatalf("spec (%v, %d changed) vs committed (%v, %d changed)",
			pen, len(ss.ChangedB), ev.Penalty, len(inc.Changed()))
	}
}

// TestSpecScoreAllocs pins the steady-state allocation count of speculative
// scoring at zero: after one warm-up score, repeated SpecScore calls on the
// same evaluator shape must not allocate.
func TestSpecScoreAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 24
	blocks := randomBlocks(rng, n)
	expr := NewBalanced(n)
	inc := NewEvaluator(&expr, blocks, DefaultEvalParams())
	inc.EnsureSpecRegions(1)
	budget := geom.RectXYWH(0, 0, 1500, 1200)
	inc.Eval(budget)

	var ss SpecScratch
	moves := make([]Move, 64)
	for i := range moves {
		for {
			expr.PerturbMove(rng, &moves[i])
			expr.UndoMove(&moves[i])
			if inc.SpecFeasible(&moves[i]) {
				break
			}
		}
	}
	// Warm up the scratch (first prepare sizes the override arrays).
	inc.SpecScore(&moves[0], budget, &ss, 0)

	k := 0
	allocs := testing.AllocsPerRun(200, func() {
		inc.SpecScore(&moves[k%len(moves)], budget, &ss, 0)
		k++
	})
	if allocs != 0 {
		t.Fatalf("SpecScore allocates %v per call in steady state, want 0", allocs)
	}
}
