// Package sta estimates design timing after placement, standing in for the
// commercial static timing analysis behind the paper's WNS/TNS metrics
// (Table III: WNS as a percentage of the clock period, TNS summed).
//
// The model works on the sequential graph: every Gseq edge is one
// register-to-register stage whose delay is an intrinsic logic delay plus a
// linear wire delay over the Manhattan distance between the placed
// positions of its endpoints. Endpoint slack is the worst incoming stage
// slack; WNS is the worst endpoint slack and TNS accumulates all negative
// endpoint slacks — exactly the quantities the paper tabulates, under a
// simulator's delay model.
package sta

import (
	"repro/internal/geom"
	"repro/internal/placement"
	"repro/internal/seqgraph"
)

// Options sets the timing model.
type Options struct {
	// ClockPs is the clock period in picoseconds (default 2000).
	ClockPs float64
	// IntrinsicPs is the per-stage logic delay (default 700).
	IntrinsicPs float64
	// WirePsPerDBU is the linear wire delay (default 0.0005 ps per DBU,
	// i.e. 0.5 ps/µm at 1 DBU = 1 nm: buffered global wire).
	WirePsPerDBU float64
}

// DefaultOptions returns the synthetic technology timing parameters.
func DefaultOptions() Options {
	return Options{ClockPs: 2000, IntrinsicPs: 700, WirePsPerDBU: 0.0005}
}

// Stage describes one timed register-to-register stage.
type Stage struct {
	From, To string
	// DistDBU is the Manhattan distance between the endpoints.
	DistDBU int64
	// DelayPs and SlackPs are the stage delay and slack.
	DelayPs, SlackPs float64
}

// Result is a timing analysis.
type Result struct {
	// WNSPct is the worst negative slack as a percentage of the clock
	// period: 0 when timing closes, negative otherwise (paper convention).
	WNSPct float64
	// TNSns is the total negative slack over endpoints, in nanoseconds
	// (negative or zero).
	TNSns float64
	// ViolatingEndpoints counts Gseq nodes with negative slack.
	ViolatingEndpoints int
	// Stages counts the timed edges.
	Stages int
	// Worst is the critical stage (zero value when there are no stages).
	Worst Stage
}

// Analyze times every sequential stage of the design.
func Analyze(sg *seqgraph.Graph, pl *placement.Placement, opt Options) *Result {
	if opt.ClockPs <= 0 {
		opt = DefaultOptions()
	}
	res := &Result{}
	pos := nodePositions(sg, pl)

	worstIn := make([]float64, len(sg.Nodes)) // worst slack arriving at node
	hasIn := make([]bool, len(sg.Nodes))
	worst := 0.0
	haveWorst := false
	for u := range sg.Out {
		for _, e := range sg.Out[u] {
			res.Stages++
			dist := pos[u].ManhattanDist(pos[e.To])
			delay := opt.IntrinsicPs + opt.WirePsPerDBU*float64(dist)
			slack := opt.ClockPs - delay
			if !hasIn[e.To] || slack < worstIn[e.To] {
				worstIn[e.To] = slack
				hasIn[e.To] = true
			}
			if !haveWorst || slack < res.Worst.SlackPs {
				res.Worst = Stage{
					From:    sg.Nodes[u].Name,
					To:      sg.Nodes[e.To].Name,
					DistDBU: dist,
					DelayPs: delay,
					SlackPs: slack,
				}
				haveWorst = true
			}
			if slack < worst {
				worst = slack
			}
		}
	}
	for v := range worstIn {
		if hasIn[v] && worstIn[v] < 0 {
			res.ViolatingEndpoints++
			res.TNSns += worstIn[v] / 1000 // ps → ns
		}
	}
	res.WNSPct = 100 * worst / opt.ClockPs
	if res.WNSPct > 0 {
		res.WNSPct = 0
	}
	return res
}

// nodePositions estimates every Gseq node's location: the centroid of its
// placed member cells (ports use their fixed positions; macros their placed
// outline centers). Unplaced members fall back to the die center.
func nodePositions(sg *seqgraph.Graph, pl *placement.Placement) []geom.Point {
	d := pl.D
	pos := make([]geom.Point, len(sg.Nodes))
	for i := range sg.Nodes {
		var sx, sy, n int64
		for _, cid := range sg.Nodes[i].Cells {
			var p geom.Point
			if pl.Placed[cid] {
				p = pl.Center(cid)
			} else {
				p = d.Die.Center()
			}
			sx += p.X
			sy += p.Y
			n++
		}
		if n == 0 {
			pos[i] = d.Die.Center()
			continue
		}
		pos[i] = geom.Pt(sx/n, sy/n)
	}
	return pos
}
