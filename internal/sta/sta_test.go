package sta

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/seqgraph"
)

// stretchable builds a -> b register pipeline (8 bits) whose stage distance
// the test controls via placement.
func stretchable(t testing.TB) (*netlist.Design, *seqgraph.Graph, []netlist.CellID, []netlist.CellID) {
	b := netlist.NewBuilder("st")
	b.SetDie(geom.RectXYWH(0, 0, 10_000_000, 10_000_000)) // 10 mm die
	var as, bs []netlist.CellID
	for i := 0; i < 8; i++ {
		a := b.AddFlop(fmt.Sprintf("a[%d]", i), "")
		bb := b.AddFlop(fmt.Sprintf("b[%d]", i), "")
		b.Wire(fmt.Sprintf("n%d", i), a, bb)
		as = append(as, a)
		bs = append(bs, bb)
	}
	d := b.MustBuild()
	sg := seqgraph.Build(d, seqgraph.DefaultParams())
	return d, sg, as, bs
}

func placeAt(pl *placement.Placement, ids []netlist.CellID, p geom.Point) {
	for _, id := range ids {
		pl.Place(id, p)
	}
}

func TestTimingClosesWhenClose(t *testing.T) {
	d, sg, as, bs := stretchable(t)
	pl := placement.New(d)
	placeAt(pl, as, geom.Pt(1000, 1000))
	placeAt(pl, bs, geom.Pt(2000, 1000)) // 1 µm apart: negligible wire delay
	res := Analyze(sg, pl, DefaultOptions())
	if res.WNSPct != 0 {
		t.Errorf("WNSPct = %v, want 0", res.WNSPct)
	}
	if res.TNSns != 0 {
		t.Errorf("TNSns = %v, want 0", res.TNSns)
	}
	if res.Stages != 1 {
		t.Errorf("Stages = %d, want 1 (one Gseq edge a->b)", res.Stages)
	}
}

func TestTimingViolatesWhenFar(t *testing.T) {
	d, sg, as, bs := stretchable(t)
	pl := placement.New(d)
	placeAt(pl, as, geom.Pt(0, 0))
	placeAt(pl, bs, geom.Pt(9_000_000, 9_000_000)) // 18 mm Manhattan
	res := Analyze(sg, pl, DefaultOptions())
	// delay = 700 + 0.0005 * 18e6 = 9700 ps >> 2000 ps.
	if res.WNSPct >= 0 {
		t.Fatalf("WNSPct = %v, want negative", res.WNSPct)
	}
	wantWNS := 100 * (2000 - 9700.0) / 2000
	if math.Abs(res.WNSPct-wantWNS) > 1 {
		t.Errorf("WNSPct = %v, want ~%v", res.WNSPct, wantWNS)
	}
	if res.ViolatingEndpoints != 1 {
		t.Errorf("ViolatingEndpoints = %d, want 1", res.ViolatingEndpoints)
	}
	// TNS: one endpoint with slack (2000-9700) ps = -7.7 ns.
	if math.Abs(res.TNSns-(-7.7)) > 0.1 {
		t.Errorf("TNSns = %v, want ~-7.7", res.TNSns)
	}
}

func TestTimingMonotoneInDistance(t *testing.T) {
	d, sg, as, bs := stretchable(t)
	prev := 0.0
	for i, x := range []int64{1_000_000, 3_000_000, 6_000_000, 9_000_000} {
		pl := placement.New(d)
		placeAt(pl, as, geom.Pt(0, 0))
		placeAt(pl, bs, geom.Pt(x, 0))
		res := Analyze(sg, pl, DefaultOptions())
		if i > 0 && res.WNSPct > prev {
			t.Errorf("WNS not monotone: %v after %v at x=%d", res.WNSPct, prev, x)
		}
		prev = res.WNSPct
	}
}

func TestCustomClockPeriod(t *testing.T) {
	d, sg, as, bs := stretchable(t)
	pl := placement.New(d)
	placeAt(pl, as, geom.Pt(0, 0))
	placeAt(pl, bs, geom.Pt(2_000_000, 0))
	// delay = 700 + 1000 = 1700 ps.
	tight := Analyze(sg, pl, Options{ClockPs: 1000, IntrinsicPs: 700, WirePsPerDBU: 0.0005})
	loose := Analyze(sg, pl, Options{ClockPs: 4000, IntrinsicPs: 700, WirePsPerDBU: 0.0005})
	if tight.WNSPct >= 0 {
		t.Error("tight clock should violate")
	}
	if loose.WNSPct != 0 {
		t.Error("loose clock should close")
	}
}

func TestMultiFaninWorstSlackWins(t *testing.T) {
	// c has two fanins: near (a) and far (b); endpoint slack must be b's.
	bld := netlist.NewBuilder("mf")
	bld.SetDie(geom.RectXYWH(0, 0, 10_000_000, 10_000_000))
	mk := func(name string) []netlist.CellID {
		var ids []netlist.CellID
		for i := 0; i < 4; i++ {
			ids = append(ids, bld.AddFlop(fmt.Sprintf("%s[%d]", name, i), ""))
		}
		return ids
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	for i := 0; i < 4; i++ {
		bld.Wire(fmt.Sprintf("na%d", i), a[i], c[i])
		bld.Wire(fmt.Sprintf("nb%d", i), b[i], c[i])
	}
	d := bld.MustBuild()
	sg := seqgraph.Build(d, seqgraph.DefaultParams())
	pl := placement.New(d)
	placeAt(pl, a, geom.Pt(100, 100))
	placeAt(pl, c, geom.Pt(200, 100))
	placeAt(pl, b, geom.Pt(8_000_000, 8_000_000))
	res := Analyze(sg, pl, DefaultOptions())
	if res.ViolatingEndpoints != 1 {
		t.Errorf("ViolatingEndpoints = %d, want 1 (c via b)", res.ViolatingEndpoints)
	}
	if res.WNSPct >= 0 {
		t.Error("expected violation via far fanin")
	}
}

func TestWorstStageReported(t *testing.T) {
	d, sg, as, bs := stretchable(t)
	pl := placement.New(d)
	placeAt(pl, as, geom.Pt(0, 0))
	placeAt(pl, bs, geom.Pt(5_000_000, 0))
	res := Analyze(sg, pl, DefaultOptions())
	if res.Worst.From != "a" || res.Worst.To != "b" {
		t.Errorf("worst stage = %s -> %s, want a -> b", res.Worst.From, res.Worst.To)
	}
	if res.Worst.DistDBU != 5_000_000 {
		t.Errorf("worst dist = %d", res.Worst.DistDBU)
	}
	if res.Worst.SlackPs >= 0 {
		t.Errorf("worst slack = %v, want negative", res.Worst.SlackPs)
	}
	wantDelay := 700 + 0.0005*5_000_000
	if math.Abs(res.Worst.DelayPs-wantDelay) > 1 {
		t.Errorf("worst delay = %v, want ~%v", res.Worst.DelayPs, wantDelay)
	}
}
