package verilog

// File is a parsed source file: an ordered set of modules.
type File struct {
	Modules []*Module
}

// Module finds a module by name, or nil.
func (f *File) Module(name string) *Module {
	for _, m := range f.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// PortDir is a module port direction.
type PortDir uint8

const (
	// DirInput marks an input port.
	DirInput PortDir = iota
	// DirOutput marks an output port.
	DirOutput
)

// Module is one module declaration.
type Module struct {
	Name string
	// PortOrder lists the header port names in declaration order.
	PortOrder []string
	// Ports maps port names to their declarations.
	Ports map[string]*NetDecl
	// Wires maps internal wire names to their declarations (ports are not
	// duplicated here).
	Wires map[string]*NetDecl
	// Insts lists instances in source order.
	Insts []*Inst
	Line  int
}

// NetDecl declares a port or wire, possibly vectored.
type NetDecl struct {
	Name string
	// MSB/LSB are the range bounds; scalar nets have MSB == LSB == 0 and
	// Vector == false.
	MSB, LSB int
	Vector   bool
	Dir      PortDir // meaningful for ports
	IsPort   bool
}

// Width returns the declared bit width.
func (n *NetDecl) Width() int {
	if !n.Vector {
		return 1
	}
	if n.MSB >= n.LSB {
		return n.MSB - n.LSB + 1
	}
	return n.LSB - n.MSB + 1
}

// Inst is one instantiation (of a library cell or another module).
type Inst struct {
	Type string
	Name string
	// Conns maps formal port names to actual expressions.
	Conns map[string]Expr
	// ConnOrder preserves source order for deterministic elaboration.
	ConnOrder []string
	Line      int
}

// Expr is a connection expression.
type Expr interface{ exprNode() }

// IdentExpr references a whole net (scalar or full vector).
type IdentExpr struct{ Name string }

// BitExpr references one bit: name[idx].
type BitExpr struct {
	Name string
	Idx  int
}

// RangeExpr references a part-select: name[msb:lsb].
type RangeExpr struct {
	Name     string
	MSB, LSB int
}

// ConcatExpr is {a, b, c} (left part is most significant).
type ConcatExpr struct{ Parts []Expr }

// ConstExpr is a sized constant such as 4'b1010.
type ConstExpr struct {
	Bits int
	// Value keeps the raw text; the elaborator only needs the width
	// because constant bits become undriven tie nets.
	Value string
}

func (IdentExpr) exprNode()  {}
func (BitExpr) exprNode()    {}
func (RangeExpr) exprNode()  {}
func (ConcatExpr) exprNode() {}
func (ConstExpr) exprNode()  {}
