package verilog

// Elaboration allocates netlist IDs, so iteration order anywhere in this
// package reaches placement results; hold it to the determinism rules.
//hidapvet:deterministic

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Elaborate flattens the module hierarchy rooted at top into the netlist
// model. Instance paths become hierarchy nodes; top-level ports become port
// cells (one per bit, named name[bit] for vectors) with positions to be
// assigned by the caller or defaulted; nets keep hierarchical names.
func Elaborate(f *File, top string, lib *Library) (*netlist.Design, error) {
	topMod := f.Module(top)
	if topMod == nil {
		return nil, fmt.Errorf("verilog: top module %q not found", top)
	}
	for _, c := range sortedCells(lib.Cells) {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	e := &elaborator{
		f:   f,
		lib: lib,
		b:   netlist.NewBuilder(top),
	}

	// Top ports: one port cell per bit, driving/receiving the port nets.
	env := map[string][]netlist.NetID{}
	for _, pname := range topMod.PortOrder {
		decl := topMod.Ports[pname]
		if decl == nil {
			return nil, fmt.Errorf("verilog: top port %s has no direction declaration", pname)
		}
		nets := e.declareNets("", decl)
		env[pname] = nets
		for bit, nid := range nets {
			cellName := pname
			if decl.Width() > 1 {
				cellName = fmt.Sprintf("%s[%d]", pname, decl.LSB+bit)
			}
			pc := e.b.AddPort(cellName)
			if decl.Dir == DirInput {
				e.b.Connect(pc, nid, netlist.DirOut) // input port drives
			} else {
				e.b.Connect(pc, nid, netlist.DirIn)
			}
		}
	}
	if err := e.instantiate(topMod, "", env); err != nil {
		return nil, err
	}
	return e.b.Build()
}

type elaborator struct {
	f    *File
	lib  *Library
	b    *netlist.Builder
	anon int
}

// declareNets creates the net IDs for a declaration under a hierarchy
// prefix, least-significant bit first.
func (e *elaborator) declareNets(prefix string, decl *NetDecl) []netlist.NetID {
	w := decl.Width()
	nets := make([]netlist.NetID, w)
	for bit := 0; bit < w; bit++ {
		name := join(prefix, decl.Name)
		if decl.Vector {
			name = fmt.Sprintf("%s[%d]", name, decl.LSB+bit)
		}
		nets[bit] = e.b.Net(name)
	}
	return nets
}

func join(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "/" + name
}

// instantiate elaborates one module instance at the given path. env binds
// the module's port names to net lists (LSB first).
func (e *elaborator) instantiate(m *Module, path string, env map[string][]netlist.NetID) error {
	// Local wires.
	local := map[string][]netlist.NetID{}
	//hidapvet:orderinvariant pure map copy; keys are distinct and no IDs are allocated
	for name, nets := range env {
		local[name] = nets
	}
	for _, decl := range sortedDecls(m.Wires) {
		local[decl.Name] = e.declareNets(path, decl)
	}

	declOf := func(name string) *NetDecl {
		if d, ok := m.Ports[name]; ok {
			return d
		}
		if d, ok := m.Wires[name]; ok {
			return d
		}
		return nil
	}

	// resolve evaluates a connection expression to a net list (LSB first).
	var resolve func(ex Expr) ([]netlist.NetID, error)
	resolve = func(ex Expr) ([]netlist.NetID, error) {
		switch v := ex.(type) {
		case IdentExpr:
			nets, ok := local[v.Name]
			if !ok {
				// Verilog implicit scalar net.
				nets = []netlist.NetID{e.b.Net(join(path, v.Name))}
				local[v.Name] = nets
			}
			return nets, nil
		case BitExpr:
			nets, ok := local[v.Name]
			if !ok {
				return nil, fmt.Errorf("verilog: %s: bit-select of undeclared net %s", path, v.Name)
			}
			d := declOf(v.Name)
			lsb := 0
			if d != nil {
				lsb = d.LSB
			}
			idx := v.Idx - lsb
			if idx < 0 || idx >= len(nets) {
				return nil, fmt.Errorf("verilog: %s: index %d out of range for %s", path, v.Idx, v.Name)
			}
			return nets[idx : idx+1], nil
		case RangeExpr:
			nets, ok := local[v.Name]
			if !ok {
				return nil, fmt.Errorf("verilog: %s: part-select of undeclared net %s", path, v.Name)
			}
			d := declOf(v.Name)
			lsb := 0
			if d != nil {
				lsb = d.LSB
			}
			lo, hi := v.LSB-lsb, v.MSB-lsb
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo < 0 || hi >= len(nets) {
				return nil, fmt.Errorf("verilog: %s: range [%d:%d] out of bounds for %s", path, v.MSB, v.LSB, v.Name)
			}
			return nets[lo : hi+1], nil
		case ConcatExpr:
			// Left-most part is most significant: resolve right to left.
			var out []netlist.NetID
			for i := len(v.Parts) - 1; i >= 0; i-- {
				part, err := resolve(v.Parts[i])
				if err != nil {
					return nil, err
				}
				out = append(out, part...)
			}
			return out, nil
		case ConstExpr:
			// Constant bits become undriven tie nets.
			out := make([]netlist.NetID, v.Bits)
			for i := range out {
				e.anon++
				out[i] = e.b.Net(fmt.Sprintf("%s/const%d", path, e.anon))
			}
			return out, nil
		}
		return nil, fmt.Errorf("verilog: %s: unsupported expression", path)
	}

	for _, inst := range m.Insts {
		ipath := join(path, inst.Name)
		if lc := e.lib.Cell(inst.Type); lc != nil {
			if err := e.placePrimitive(lc, inst, ipath, resolve); err != nil {
				return err
			}
			continue
		}
		sub := e.f.Module(inst.Type)
		if sub == nil {
			return fmt.Errorf("verilog: %s: unknown cell or module type %q", ipath, inst.Type)
		}
		subEnv := map[string][]netlist.NetID{}
		for _, port := range inst.ConnOrder {
			decl := sub.Ports[port]
			if decl == nil {
				return fmt.Errorf("verilog: %s: module %s has no port %s", ipath, sub.Name, port)
			}
			nets, err := resolve(inst.Conns[port])
			if err != nil {
				return err
			}
			if len(nets) != decl.Width() {
				return fmt.Errorf("verilog: %s: port %s width %d bound to %d bits",
					ipath, port, decl.Width(), len(nets))
			}
			subEnv[port] = nets
		}
		// Unconnected submodule ports get fresh local nets. Sorted order
		// matters here: declareNets allocates net IDs, and map-order
		// allocation would renumber the whole netlist run to run.
		for _, decl := range sortedDecls(sub.Ports) {
			if _, ok := subEnv[decl.Name]; !ok {
				subEnv[decl.Name] = e.declareNets(ipath, decl)
			}
		}
		if err := e.instantiate(sub, ipath, subEnv); err != nil {
			return err
		}
	}
	return nil
}

// placePrimitive creates a netlist cell for a library primitive instance.
func (e *elaborator) placePrimitive(lc *LibCell, inst *Inst, ipath string,
	resolve func(Expr) ([]netlist.NetID, error)) error {

	var id netlist.CellID
	hierPath := parentPath(ipath)
	switch lc.Kind {
	case netlist.KindMacro:
		id = e.b.AddMacro(ipath, lc.Width, lc.Height, hierPath)
	case netlist.KindFlop:
		id = e.b.AddCell(ipath, netlist.KindFlop, lc.Width, lc.Height, hierPath)
	default:
		id = e.b.AddCell(ipath, netlist.KindComb, lc.Width, lc.Height, hierPath)
	}
	for _, port := range inst.ConnOrder {
		spec := lc.Pin(port)
		if spec == nil {
			return fmt.Errorf("verilog: %s: cell %s has no pin %s", ipath, lc.Name, port)
		}
		nets, err := resolve(inst.Conns[port])
		if err != nil {
			return err
		}
		if len(nets) != spec.Width {
			return fmt.Errorf("verilog: %s: pin %s width %d bound to %d bits",
				ipath, port, spec.Width, len(nets))
		}
		for bit, nid := range nets {
			off := geom.Pt(spec.Offset.X, spec.Offset.Y+int64(bit)*spec.Pitch)
			e.b.ConnectAt(id, nid, spec.Dir, off)
		}
	}
	return nil
}

// parentPath strips the last path segment (the instance's own name).
func parentPath(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return ""
}

// sortedCells returns library cells in name order for determinism.
func sortedCells(m map[string]*LibCell) []*LibCell {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*LibCell, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}

// sortedDecls returns map values in name order for determinism.
func sortedDecls(m map[string]*NetDecl) []*NetDecl {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*NetDecl, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}
