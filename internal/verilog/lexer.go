// Package verilog provides a structural-Verilog-subset front end for the
// floorplanner: a lexer and parser for gate/macro-level netlists, a small
// synthetic cell library, an elaborator that flattens the module hierarchy
// into the netlist model (preserving hierarchy paths and array names), and
// a writer that emits a flat design back as Verilog.
//
// Supported subset: module declarations with port lists, input/output/wire
// declarations with ranges, and module/primitive instantiations with named
// port connections (identifiers, bit-selects, part-selects, concatenations
// and sized constants). This covers what synthesis tools emit for the
// macro-placement use case; behavioral constructs are rejected.
package verilog

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // plain decimal
	tokBased  // sized constant like 4'b1010
	tokPunct  // single-char punctuation
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the whole input up front (netlists are small relative to
// memory; a token slice keeps the parser trivial).
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.lexIdent()
		case c == '\\':
			if err := l.lexEscapedIdent(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case strings.IndexByte("()[]{}.,;:#=", c) >= 0:
			l.toks = append(l.toks, token{kind: tokPunct, text: string(c), line: l.line})
			l.pos++
		default:
			return nil, fmt.Errorf("verilog: line %d: unexpected character %q", l.line, c)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], line: l.line})
}

// lexEscapedIdent handles Verilog escaped identifiers: \anything-until-space.
func (l *lexer) lexEscapedIdent() error {
	l.pos++ // consume backslash
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != ' ' && l.src[l.pos] != '\t' &&
		l.src[l.pos] != '\n' && l.src[l.pos] != '\r' {
		l.pos++
	}
	if l.pos == start {
		return fmt.Errorf("verilog: line %d: empty escaped identifier", l.line)
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], line: l.line})
	return nil
}

// lexNumber handles decimals and sized constants (8'hFF, 4'b1010, 3'd5).
func (l *lexer) lexNumber() error {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '\'' {
		l.pos++
		if l.pos >= len(l.src) {
			return fmt.Errorf("verilog: line %d: truncated based constant", l.line)
		}
		base := l.src[l.pos]
		if strings.IndexByte("bBoOdDhH", base) < 0 {
			return fmt.Errorf("verilog: line %d: bad constant base %q", l.line, base)
		}
		l.pos++
		digits := l.pos
		for l.pos < len(l.src) && (isIdentPart(l.src[l.pos])) {
			l.pos++
		}
		if l.pos == digits {
			return fmt.Errorf("verilog: line %d: based constant without digits", l.line)
		}
		l.toks = append(l.toks, token{kind: tokBased, text: l.src[start:l.pos], line: l.line})
		return nil
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], line: l.line})
	return nil
}
