package verilog

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// PinSpec describes one library cell pin.
type PinSpec struct {
	Name string
	Dir  netlist.PinDir
	// Width > 1 makes the pin a bus: the bound expression must have the
	// same width and each bit becomes its own netlist pin.
	Width int
	// Offset is the location of bit 0 within the cell outline; further
	// bits step by Pitch vertically.
	Offset geom.Point
	Pitch  int64
}

// LibCell is one library primitive.
type LibCell struct {
	Name          string
	Kind          netlist.CellKind
	Width, Height int64
	Pins          []PinSpec
}

// Pin finds a pin by name.
func (c *LibCell) Pin(name string) *PinSpec {
	for i := range c.Pins {
		if c.Pins[i].Name == name {
			return &c.Pins[i]
		}
	}
	return nil
}

// Library is a set of primitives, keyed by cell type name.
type Library struct {
	Cells map[string]*LibCell
}

// Cell looks up a cell type.
func (l *Library) Cell(name string) *LibCell { return l.Cells[name] }

// Add registers a cell (replacing any previous definition).
func (l *Library) Add(c *LibCell) { l.Cells[c.Name] = c }

// AddMacro registers a macro with D (input) and Q (output) data buses on
// the west and east edges.
func (l *Library) AddMacro(name string, w, h int64, dataBits int) *LibCell {
	pitch := h / int64(dataBits+2)
	c := &LibCell{
		Name: name, Kind: netlist.KindMacro, Width: w, Height: h,
		Pins: []PinSpec{
			{Name: "D", Dir: netlist.DirIn, Width: dataBits, Offset: geom.Pt(0, pitch), Pitch: pitch},
			{Name: "Q", Dir: netlist.DirOut, Width: dataBits, Offset: geom.Pt(w, pitch), Pitch: pitch},
			{Name: "CE", Dir: netlist.DirIn, Width: 1, Offset: geom.Pt(0, 0)},
		},
	}
	l.Add(c)
	return c
}

// rowH is the synthetic library row height used for primitive footprints.
const rowH = 1400

func comb2(name string, ins ...string) *LibCell {
	c := &LibCell{
		Name: name, Kind: netlist.KindComb,
		Width: int64(1+len(ins)) * rowH, Height: rowH,
	}
	for _, in := range ins {
		c.Pins = append(c.Pins, PinSpec{Name: in, Dir: netlist.DirIn, Width: 1})
	}
	c.Pins = append(c.Pins, PinSpec{Name: "Y", Dir: netlist.DirOut, Width: 1})
	return c
}

// DefaultLibrary returns the synthetic standard cell library: a flop, the
// usual combinational gates, and no macros (register macros per design with
// AddMacro).
func DefaultLibrary() *Library {
	l := &Library{Cells: map[string]*LibCell{}}
	l.Add(&LibCell{
		Name: "DFF", Kind: netlist.KindFlop, Width: 4 * rowH, Height: rowH,
		Pins: []PinSpec{
			{Name: "D", Dir: netlist.DirIn, Width: 1},
			{Name: "CK", Dir: netlist.DirIn, Width: 1},
			{Name: "Q", Dir: netlist.DirOut, Width: 1},
		},
	})
	for _, c := range []*LibCell{
		comb2("BUF", "A"),
		comb2("INV", "A"),
		comb2("AND2", "A", "B"),
		comb2("OR2", "A", "B"),
		comb2("NAND2", "A", "B"),
		comb2("NOR2", "A", "B"),
		comb2("XOR2", "A", "B"),
		comb2("MUX2", "A", "B", "S"),
	} {
		l.Add(c)
	}
	return l
}

// validate checks that the library cell definition is usable.
func (c *LibCell) validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("verilog: library cell %s has degenerate outline", c.Name)
	}
	for i := range c.Pins {
		if c.Pins[i].Width <= 0 {
			return fmt.Errorf("verilog: library cell %s pin %s has width %d",
				c.Name, c.Pins[i].Name, c.Pins[i].Width)
		}
	}
	return nil
}
