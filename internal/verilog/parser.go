package verilog

import (
	"fmt"
	"strconv"
)

// Parse parses a structural Verilog source into a File.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(tokEOF, "") {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		f.Modules = append(f.Modules, m)
	}
	return f, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	return t, fmt.Errorf("verilog: line %d: expected %q, found %q", t.line, text, t.text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("verilog: line %d: "+format, append([]interface{}{p.cur().line}, args...)...)
}

func (p *parser) parseModule() (*Module, error) {
	if _, err := p.expect(tokIdent, "module"); err != nil {
		return nil, err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{
		Name:  nameTok.text,
		Ports: map[string]*NetDecl{},
		Wires: map[string]*NetDecl{},
		Line:  nameTok.line,
	}
	// Header port list (names only; directions come from body decls).
	if p.accept(tokPunct, "(") {
		for !p.accept(tokPunct, ")") {
			t, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			m.PortOrder = append(m.PortOrder, t.text)
			if !p.accept(tokPunct, ",") && !p.at(tokPunct, ")") {
				return nil, p.errf("expected ',' or ')' in port list")
			}
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}

	for {
		switch {
		case p.at(tokIdent, "endmodule"):
			p.next()
			return m, nil
		case p.at(tokIdent, "input") || p.at(tokIdent, "output"):
			if err := p.parsePortDecl(m); err != nil {
				return nil, err
			}
		case p.at(tokIdent, "wire"):
			if err := p.parseWireDecl(m); err != nil {
				return nil, err
			}
		case p.at(tokIdent, ""):
			if err := p.parseInstance(m); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected token %q in module body", p.cur().text)
		}
	}
}

func (p *parser) expectIdent() (token, error) {
	if p.at(tokIdent, "") {
		return p.next(), nil
	}
	return p.cur(), p.errf("expected identifier, found %q", p.cur().text)
}

// parseRange parses an optional [msb:lsb]; returns (msb, lsb, isVector).
func (p *parser) parseRange() (int, int, bool, error) {
	if !p.accept(tokPunct, "[") {
		return 0, 0, false, nil
	}
	msb, err := p.expectInt()
	if err != nil {
		return 0, 0, false, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return 0, 0, false, err
	}
	lsb, err := p.expectInt()
	if err != nil {
		return 0, 0, false, err
	}
	if _, err := p.expect(tokPunct, "]"); err != nil {
		return 0, 0, false, err
	}
	return msb, lsb, true, nil
}

func (p *parser) expectInt() (int, error) {
	if !p.at(tokNumber, "") {
		return 0, p.errf("expected number, found %q", p.cur().text)
	}
	v, err := strconv.Atoi(p.next().text)
	if err != nil {
		return 0, err
	}
	return v, nil
}

func (p *parser) parsePortDecl(m *Module) error {
	dir := DirInput
	if p.next().text == "output" {
		dir = DirOutput
	}
	msb, lsb, vec, err := p.parseRange()
	if err != nil {
		return err
	}
	for {
		t, err := p.expectIdent()
		if err != nil {
			return err
		}
		m.Ports[t.text] = &NetDecl{
			Name: t.text, MSB: msb, LSB: lsb, Vector: vec, Dir: dir, IsPort: true,
		}
		if p.accept(tokPunct, ";") {
			return nil
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return err
		}
	}
}

func (p *parser) parseWireDecl(m *Module) error {
	p.next() // "wire"
	msb, lsb, vec, err := p.parseRange()
	if err != nil {
		return err
	}
	for {
		t, err := p.expectIdent()
		if err != nil {
			return err
		}
		m.Wires[t.text] = &NetDecl{Name: t.text, MSB: msb, LSB: lsb, Vector: vec}
		if p.accept(tokPunct, ";") {
			return nil
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return err
		}
	}
}

func (p *parser) parseInstance(m *Module) error {
	typeTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	switch typeTok.text {
	case "assign", "always", "initial", "reg", "parameter", "genvar", "generate":
		return fmt.Errorf("verilog: line %d: behavioral construct %q not supported (structural netlists only)",
			typeTok.line, typeTok.text)
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	inst := &Inst{Type: typeTok.text, Name: nameTok.text, Conns: map[string]Expr{}, Line: typeTok.line}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return err
	}
	for !p.accept(tokPunct, ")") {
		if _, err := p.expect(tokPunct, "."); err != nil {
			return err
		}
		port, err := p.expectIdent()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return err
		}
		var ex Expr
		if !p.at(tokPunct, ")") { // unconnected: .P()
			ex, err = p.parseExpr()
			if err != nil {
				return err
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return err
		}
		if _, dup := inst.Conns[port.text]; dup {
			return fmt.Errorf("verilog: line %d: duplicate connection to port %s", port.line, port.text)
		}
		if ex != nil {
			inst.Conns[port.text] = ex
			inst.ConnOrder = append(inst.ConnOrder, port.text)
		}
		if !p.accept(tokPunct, ",") && !p.at(tokPunct, ")") {
			return p.errf("expected ',' or ')' in connection list")
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	m.Insts = append(m.Insts, inst)
	return nil
}

func (p *parser) parseExpr() (Expr, error) {
	switch {
	case p.at(tokBased, ""):
		t := p.next()
		bits := 1
		for i := 0; i < len(t.text); i++ {
			if t.text[i] == '\'' {
				if n, err := strconv.Atoi(t.text[:i]); err == nil {
					bits = n
				}
				break
			}
		}
		return ConstExpr{Bits: bits, Value: t.text}, nil
	case p.at(tokPunct, "{"):
		p.next()
		cc := ConcatExpr{}
		for !p.accept(tokPunct, "}") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cc.Parts = append(cc.Parts, e)
			if !p.accept(tokPunct, ",") && !p.at(tokPunct, "}") {
				return nil, p.errf("expected ',' or '}' in concatenation")
			}
		}
		return cc, nil
	case p.at(tokIdent, ""):
		name := p.next().text
		if !p.accept(tokPunct, "[") {
			return IdentExpr{Name: name}, nil
		}
		first, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if p.accept(tokPunct, ":") {
			lsb, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return RangeExpr{Name: name, MSB: first, LSB: lsb}, nil
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		return BitExpr{Name: name, Idx: first}, nil
	}
	return nil, p.errf("expected expression, found %q", p.cur().text)
}
