package verilog

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

const srcPipeline = `
// A two-level structural netlist with a macro.
module wrapper (d, q);
  input [3:0] d;
  output [3:0] q;
  RAM16 u_mem (.D(d), .Q(q), .CE(1'b1));
endmodule

module top (din, dout);
  input [3:0] din;
  output [3:0] dout;
  wire [3:0] s1, s2;
  wire n0;

  DFF r0 (.D(din[0]), .Q(s1[0]));
  DFF r1 (.D(din[1]), .Q(s1[1]));
  DFF r2 (.D(din[2]), .Q(s1[2]));
  DFF r3 (.D(din[3]), .Q(s1[3]));
  AND2 g0 (.A(s1[0]), .B(s1[1]), .Y(n0));
  BUF g1 (.A(n0), .Y(s2[0]));
  BUF g2 (.A(s1[1]), .Y(s2[1]));
  BUF g3 (.A(s1[2]), .Y(s2[2]));
  BUF g4 (.A(s1[3]), .Y(s2[3]));
  wrapper u_w (.d(s2), .q(dout));
endmodule
`

func libWithRAM16() *Library {
	lib := DefaultLibrary()
	lib.AddMacro("RAM16", 20_000, 12_000, 4)
	return lib
}

func TestParseBasics(t *testing.T) {
	f, err := Parse(srcPipeline)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Modules) != 2 {
		t.Fatalf("modules = %d", len(f.Modules))
	}
	top := f.Module("top")
	if top == nil {
		t.Fatal("top missing")
	}
	if len(top.PortOrder) != 2 || top.PortOrder[0] != "din" {
		t.Errorf("ports = %v", top.PortOrder)
	}
	if top.Ports["din"].Width() != 4 || top.Ports["din"].Dir != DirInput {
		t.Errorf("din decl = %+v", top.Ports["din"])
	}
	if len(top.Insts) != 10 {
		t.Errorf("instances = %d, want 10", len(top.Insts))
	}
}

func TestParseComments(t *testing.T) {
	src := `
module m (a); // line comment
  input a; /* block
  comment */ wire b;
  BUF g (.A(a), .Y(b));
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Module("m") == nil {
		t.Fatal("module m missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"behavioral", "module m(); assign x = y; endmodule", "behavioral"},
		{"unterminated", "module m(a; endmodule", "expected"},
		{"badchar", "module m(); ! endmodule", "unexpected character"},
		{"dupconn", `module m(); BUF g (.A(x), .A(y)); endmodule`, "duplicate"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.frag)
		}
	}
}

func TestElaborate(t *testing.T) {
	f, err := Parse(srcPipeline)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(f, "top", libWithRAM16())
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.PortCells != 8 { // 4 din + 4 dout bits
		t.Errorf("ports = %d, want 8", st.PortCells)
	}
	if st.Flops != 4 {
		t.Errorf("flops = %d, want 4", st.Flops)
	}
	if st.MacroCells != 1 {
		t.Errorf("macros = %d, want 1", st.MacroCells)
	}
	if st.Comb != 5 {
		t.Errorf("comb = %d, want 5", st.Comb)
	}
	// Hierarchy: u_w exists and holds the macro.
	hid := d.NodeByPath("u_w")
	if hid == netlist.None {
		t.Fatal("hierarchy node u_w missing")
	}
	mac := d.CellByName("u_w/u_mem")
	if mac == netlist.None {
		t.Fatal("macro cell u_w/u_mem missing")
	}
	if d.Cell(mac).Hier != hid {
		t.Error("macro not under u_w")
	}
}

func TestElaborateConnectivity(t *testing.T) {
	f, _ := Parse(srcPipeline)
	d, err := Elaborate(f, "top", libWithRAM16())
	if err != nil {
		t.Fatal(err)
	}
	// din[0] net: port drives r0.D.
	r0 := d.CellByName("r0")
	if r0 == netlist.None {
		t.Fatal("r0 missing")
	}
	var dinNet netlist.NetID = netlist.None
	for _, pid := range d.Cell(r0).Pins {
		if d.Pin(pid).Dir == netlist.DirIn {
			dinNet = d.Pin(pid).Net
		}
	}
	found := false
	for _, pid := range d.Net(dinNet).Pins {
		c := d.Cell(d.Pin(pid).Cell)
		if c.Kind == netlist.KindPort && c.Name == "din[0]" {
			found = true
		}
	}
	if !found {
		t.Error("din[0] port not on r0's input net")
	}
	// Macro D pin width: 4 pins with distinct offsets.
	mac := d.CellByName("u_w/u_mem")
	ins := 0
	for _, pid := range d.Cell(mac).Pins {
		if d.Pin(pid).Dir == netlist.DirIn {
			ins++
		}
	}
	if ins != 5 { // 4 data + CE
		t.Errorf("macro input pins = %d, want 5", ins)
	}
}

func TestElaborateErrors(t *testing.T) {
	lib := libWithRAM16()
	cases := []struct {
		name, src, top, frag string
	}{
		{"missing top", "module m(); endmodule", "nope", "not found"},
		{"unknown type", "module t(); FOO u (.A(x)); endmodule", "t", "unknown cell"},
		{"width mismatch", `
			module s(p); input [7:0] p; endmodule
			module t(); wire [3:0] w; s u (.p(w)); endmodule`, "t", "width"},
		{"bad pin", "module t(); DFF f (.NOPE(x)); endmodule", "t", "no pin"},
		{"bad index", "module t(); wire [3:0] w; BUF g (.A(w[9]), .Y(y)); endmodule", "t", "out of range"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if _, err := Elaborate(f, c.top, lib); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.frag)
		}
	}
}

func TestConcatAndConst(t *testing.T) {
	src := `
module s(p); input [3:0] p; endmodule
module t(a, b);
  input [1:0] a;
  input [1:0] b;
  s u (.p({a, b}));
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(f, "t", DefaultLibrary()); err != nil {
		t.Fatalf("concat elaboration failed: %v", err)
	}
}

func TestPartSelect(t *testing.T) {
	src := `
module s(p); input [1:0] p; endmodule
module t(a);
  input [7:0] a;
  s u (.p(a[5:4]));
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(f, "t", DefaultLibrary()); err != nil {
		t.Fatalf("part-select elaboration failed: %v", err)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	f, _ := Parse(srcPipeline)
	lib := libWithRAM16()
	d, err := Elaborate(f, "top", lib)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, d, lib); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "module top") {
		t.Error("missing module header")
	}
	f2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	d2, err := Elaborate(f2, "top", lib)
	if err != nil {
		t.Fatalf("re-elaborate failed: %v\n%s", err, out)
	}
	s1, s2 := d.Stats(), d2.Stats()
	if s1.Flops != s2.Flops || s1.MacroCells != s2.MacroCells ||
		s1.Comb != s2.Comb || s1.PortCells != s2.PortCells {
		t.Errorf("round trip changed stats: %+v vs %+v", s1, s2)
	}
}

func TestEscapedIdentifier(t *testing.T) {
	src := "module m(a); input a; BUF \\g$1 (.A(a), .Y(y)); endmodule"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Module("m").Insts[0].Name != "g$1" {
		t.Errorf("escaped name = %q", f.Module("m").Insts[0].Name)
	}
}

func TestLexerBasedConstants(t *testing.T) {
	toks, err := lex("8'hFF 4'b1010 3'd5")
	if err != nil {
		t.Fatal(err)
	}
	based := 0
	for _, tok := range toks {
		if tok.kind == tokBased {
			based++
		}
	}
	if based != 3 {
		t.Errorf("based constants = %d, want 3", based)
	}
	if _, err := lex("4'"); err == nil {
		t.Error("truncated constant should fail")
	}
	if _, err := lex("4'q0"); err == nil {
		t.Error("bad base should fail")
	}
}
